// bench_filtered — the filtered-search recall gate.
//
// Sweeps predicate selectivity over four tiers (0.1%, 1%, 10%, 50% of the
// base rows accepted, timestamp-threshold bitsets with exact row counts)
// and grades two strategies against predicate-restricted exact ground
// truth:
//
//   graph       filter-during-search: the ALGAS engine with the predicate
//               wired into SearchConfig::accept. Rejected rows still ROUTE
//               (the traversal crosses them) but never surface; the engine
//               widens candidate_len by ~1/selectivity (capped 8x, see
//               search::widen_for_selectivity) so survivors fill the TopK.
//   postfilter  the classic IVF baseline: fetch an oversized unfiltered
//               TopK (k/selectivity, capped), drop rejected rows, keep 10.
//               At low selectivity the fetch cap starves it — the effect
//               the paper's graph-side filtering avoids.
//
// The JSON also carries an FNV-1a checksum over the attribute arrays and
// over the null-predicate variant's full result lists. CI runs the bench
// at ALGAS_FILTERED_HOSTS=1 and =4 and byte-compares the files: filtered
// search must not depend on host thread count, and a null predicate must
// reproduce the unfiltered engine bit for bit. The bench exits nonzero
// unless graph >= postfilter recall at one tier or more.
//
// Knobs (environment, same semantics as the other benches):
//   ALGAS_SCALE          dataset size multiplier (CI gate uses 0.05)
//   ALGAS_QUERIES        queries per variant (CI: 40)
//   ALGAS_DATASETS       first listed name is the gate dataset
//   ALGAS_FILTERED_OUT   output JSON path (default "BENCH_filtered.json")
//   ALGAS_FILTERED_HOSTS host worker threads in the engine (default 1)
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/ivf.hpp"
#include "common/env.hpp"
#include "core/engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/registry.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"
#include "metrics/recall.hpp"
#include "search/accept.hpp"

using namespace algas;

namespace {

constexpr std::size_t kTopk = 10;
constexpr double kTiers[] = {0.001, 0.01, 0.1, 0.5};
const char* kTierNames[] = {"0.1pct", "1pct", "10pct", "50pct"};

/// The recall_gate configuration (topk 10), shared with bench_churn.
core::AlgasConfig gate_config(std::size_t hosts) {
  core::AlgasConfig cfg;
  cfg.search.topk = kTopk;
  cfg.search.candidate_len = 128;
  cfg.search.beam_width = 4;
  cfg.search.offset_beam = 24;
  cfg.slots = 16;
  cfg.host_threads = hosts;
  cfg.n_parallel = 4;
  cfg.host_sync = core::HostSync::kPollMirrored;
  return cfg;
}

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
};

std::uint64_t attribute_checksum(const Dataset& ds) {
  Fnv f;
  f.mix(ds.num_base());
  for (const std::uint32_t c : ds.categories()) f.mix(c);
  for (const std::uint32_t t : ds.timestamps()) f.mix(t);
  return f.h;
}

/// Fingerprint of every served result list: (query, id, distance bits),
/// canonicalized by query index — the collector stores completion order,
/// which legitimately varies with host thread count, while each query's
/// RESULTS must not. The checksum doubles as a byte-identity pin for the
/// null-predicate path against the pre-filter engine.
std::uint64_t results_checksum(const metrics::Collector& col) {
  std::vector<const metrics::QueryRecord*> recs;
  recs.reserve(col.records().size());
  for (const auto& rec : col.records()) recs.push_back(&rec);
  std::sort(recs.begin(), recs.end(),
            [](const metrics::QueryRecord* a, const metrics::QueryRecord* b) {
              return a->query_index < b->query_index;
            });
  Fnv f;
  for (const auto* rec : recs) {
    f.mix(rec->query_index);
    for (const KV& kv : rec->results) {
      f.mix(kv.id());
      f.mix(std::bit_cast<std::uint32_t>(kv.dist));
    }
  }
  return f.h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Bitset accepting exactly `want` rows: the `want` smallest (timestamp,
/// id) pairs. Ties break by id, so the accepted set — and everything
/// downstream — is a pure function of the attribute arrays.
search::NodeBitset timestamp_tier(const Dataset& ds, std::size_t want) {
  const auto& ts = ds.timestamps();
  std::vector<std::pair<std::uint32_t, NodeId>> order(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    order[i] = {ts[i], static_cast<NodeId>(i)};
  }
  std::sort(order.begin(), order.end());
  search::NodeBitset bits(ds.num_base());
  for (std::size_t i = 0; i < want && i < order.size(); ++i) {
    bits.set(order[i].second);
  }
  return bits;
}

double mean_recall_against(const std::vector<NodeId>& gt,
                           const metrics::Collector& col) {
  double total = 0.0;
  std::size_t served = 0;
  for (const auto& rec : col.records()) {
    if (!rec.served()) continue;
    ++served;
    total += metrics::recall_against(
        {gt.data() + rec.query_index * kTopk, kTopk}, rec.results, kTopk);
  }
  return served == 0 ? 0.0 : total / static_cast<double>(served);
}

struct TierResult {
  std::size_t accepted = 0;
  double graph_recall = 0.0;
  double graph_latency_us = 0.0;
  std::size_t widened_len = 0;
  double postfilter_recall = 0.0;
  std::size_t postfilter_fetch = 0;
  double postfilter_scanned = 0.0;  ///< mean rows exhaustively scored
};

}  // namespace

int main() {
  const RuntimeOptions opts = RuntimeOptions::from_env();
  std::string raw = opts.datasets;
  if (raw.empty()) raw = "sift";
  const std::string ds_name = raw.substr(0, raw.find(','));

  Dataset ds = load_bench_dataset(ds_name);
  // Cached dataset files may predate attributes; (re)attach explicitly.
  // Stateless per-row generation means this agrees with what a fresh
  // generator run would have attached.
  attach_synthetic_attributes(ds);
  const std::size_t n = ds.num_base();
  const std::size_t nq =
      std::min(opts.queries == 0 ? ds.num_queries() : opts.queries,
               ds.num_queries());

  BuildConfig build_cfg;  // bench_build_config() values: shared identity
  build_cfg.degree = 32;
  build_cfg.ef_construction = 64;
  const Graph g = build_graph(GraphKind::kNsw, ds, build_cfg).graph;

  baselines::IvfBuildConfig ivf_cfg;  // nlist 0 = sqrt(n) heuristic
  const baselines::IvfIndex ivf = baselines::IvfIndex::build(ds, ivf_cfg);
  constexpr std::size_t kNprobe = 8;
  constexpr std::size_t kFetchCap = 4096;

  std::printf("%s: n=%zu queries=%zu hosts=%zu | ivf nlist=%zu\n",
              ds_name.c_str(), n, nq, opts.filtered_hosts, ivf.nlist());

  // Null-predicate reference: the unfiltered engine, recall against the
  // cached exact ground truth, full result lists checksummed. This is the
  // byte-identity pin — it must match the pre-filter engine exactly.
  const auto null_rep =
      core::AlgasEngine(ds, g, gate_config(opts.filtered_hosts))
          .run_closed_loop(nq);
  const std::uint64_t null_checksum = results_checksum(null_rep.collector);
  std::printf("null: recall@10 %.6f | checksum %s\n", null_rep.recall,
              hex64(null_checksum).c_str());

  const std::size_t n_tiers = std::size(kTiers);
  std::vector<TierResult> tiers(n_tiers);
  for (std::size_t t = 0; t < n_tiers; ++t) {
    TierResult& r = tiers[t];
    const auto want = std::max<std::size_t>(
        1, static_cast<std::size_t>(kTiers[t] * static_cast<double>(n) + 0.5));
    const search::NodeBitset bits = timestamp_tier(ds, want);
    const search::AcceptPredicate accept(&bits);
    r.accepted = bits.count();

    const auto gt = compute_filtered_ground_truth(ds, kTopk, accept);

    core::AlgasConfig cfg = gate_config(opts.filtered_hosts);
    cfg.search.accept = accept;
    core::AlgasEngine engine(ds, g, cfg);
    r.widened_len = engine.config().search.candidate_len;
    const auto rep = engine.run_closed_loop(nq);
    r.graph_recall = mean_recall_against(gt, rep.collector);
    r.graph_latency_us = rep.summary.mean_service_us;

    // IVF post-filter: oversized unfiltered fetch, filter, keep 10. The
    // fetch budget is k/selectivity capped — past the cap the expected
    // accepted yield drops below k and recall collapses.
    r.postfilter_fetch = std::min(
        n, std::min(kFetchCap, kTopk * std::max<std::size_t>(
                                   1, n / std::max<std::size_t>(want, 1))));
    r.postfilter_fetch = std::max(r.postfilter_fetch, kTopk);
    std::size_t scanned_total = 0;
    double pf_total = 0.0;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto out = ivf.search(ds, ds.query(q), kNprobe,
                                  r.postfilter_fetch);
      scanned_total += out.scanned;
      std::vector<KV> kept;
      kept.reserve(kTopk);
      for (const KV& kv : out.topk) {
        if (kv.is_empty() || kept.size() == kTopk) break;
        if (accept.accepts(kv.id())) kept.push_back(kv);
      }
      pf_total += metrics::recall_against({gt.data() + q * kTopk, kTopk},
                                          kept, kTopk);
    }
    r.postfilter_recall = pf_total / static_cast<double>(nq);
    r.postfilter_scanned =
        static_cast<double>(scanned_total) / static_cast<double>(nq);

    std::printf("tier %s: accepted %zu/%zu | graph recall@10 %.6f "
                "(L=%zu, %.1fus) | postfilter recall@10 %.6f (fetch %zu, "
                "scan %.0f)\n",
                kTierNames[t], r.accepted, n, r.graph_recall, r.widened_len,
                r.graph_latency_us, r.postfilter_recall, r.postfilter_fetch,
                r.postfilter_scanned);
  }

  std::size_t graph_wins = 0;
  for (const TierResult& r : tiers) {
    if (r.graph_recall >= r.postfilter_recall) ++graph_wins;
  }

  const std::uint64_t attr_checksum = attribute_checksum(ds);
  const std::string out_path = opts.filtered_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  out.precision(10);
  out << "{\n"
      << "  \"bench\": \"bench_filtered\",\n"
      << "  \"dataset\": \"" << ds_name << "\",\n"
      << "  \"n_base\": " << n << ",\n"
      << "  \"dim\": " << ds.dim() << ",\n"
      << "  \"queries\": " << nq << ",\n"
      << "  \"topk\": " << kTopk << ",\n"
      << "  \"candidate_len\": 128,\n"
      << "  \"attr_checksum\": \"" << hex64(attr_checksum) << "\",\n"
      << "  \"null_results_checksum\": \"" << hex64(null_checksum) << "\",\n"
      << "  \"graph_wins\": " << graph_wins << ",\n"
      << "  \"variants\": {\n"
      << "    \"null\": {\n"
      << "      \"recall_at_10\": " << null_rep.recall << ",\n"
      << "      \"mean_latency_us\": " << null_rep.summary.mean_service_us
      << "\n    }";
  for (std::size_t t = 0; t < n_tiers; ++t) {
    const TierResult& r = tiers[t];
    out << ",\n    \"graph_" << kTierNames[t] << "\": {\n"
        << "      \"recall_at_10\": " << r.graph_recall << ",\n"
        << "      \"accepted\": " << r.accepted << ",\n"
        << "      \"candidate_len\": " << r.widened_len << ",\n"
        << "      \"mean_latency_us\": " << r.graph_latency_us << "\n    }"
        << ",\n    \"postfilter_" << kTierNames[t] << "\": {\n"
        << "      \"recall_at_10\": " << r.postfilter_recall << ",\n"
        << "      \"fetch\": " << r.postfilter_fetch << ",\n"
        << "      \"mean_scanned\": " << r.postfilter_scanned << "\n    }";
  }
  out << "\n  },\n  \"end\": true\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (graph_wins == 0) {
    std::fprintf(stderr,
                 "bench_filtered: FAILED — filter-during-search beat the "
                 "IVF post-filter at 0 of %zu tiers\n",
                 n_tiers);
    return 1;
  }
  std::printf("graph >= postfilter at %zu/%zu tiers\n", graph_wins, n_tiers);
  return 0;
}
