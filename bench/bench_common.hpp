// Shared harness support for the per-figure bench binaries.
//
// Every bench prints TSV to stdout: "#"-prefixed metadata lines, then a
// header row, then one row per plotted point. Environment knobs are read
// through RuntimeOptions::from_env() (see common/env.hpp for the full list
// and precedence rule): ALGAS_SCALE, ALGAS_QUERIES, ALGAS_DATASETS,
// ALGAS_CACHE_DIR, ALGAS_STORAGE, ALGAS_BUILD_THREADS.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "dataset/dataset.hpp"
#include "graph/builder.hpp"
#include "metrics/table.hpp"

namespace algas::bench {

/// Graph build parameters every bench shares (so disk caches are reused).
BuildConfig bench_build_config();

/// Dataset names selected via ALGAS_DATASETS (validated).
std::vector<std::string> selected_datasets();

/// Base-row storage codec selected via ALGAS_STORAGE (validated).
StorageCodec storage_codec();

/// Load (cache-backed) the named bench dataset; kept in-process.
const Dataset& dataset(const std::string& name);

/// Load or build (cache-backed) a graph for the named dataset.
const Graph& graph(const std::string& name, GraphKind kind);

/// min(ALGAS_QUERIES override, dataset queries, fallback).
std::size_t query_budget(const Dataset& ds, std::size_t fallback);

/// n queries all arriving at t=0 (closed loop).
std::vector<core::PendingQuery> closed_loop(std::size_t n);

/// Standard metadata header: bench name, dataset line, scale.
void print_header(const std::string& bench, const std::string& what);

/// Standard engine configurations used across the comparison benches so
/// every figure compares identical search work. n_parallel defaults to 4
/// CTAs per query (the small-batch sweet spot); beam extend is on for
/// ALGAS (width 4, offset 24) and off for the baselines, as in the paper.
core::AlgasConfig algas_config(std::size_t batch, std::size_t candidate_len,
                               std::size_t topk = 16,
                               std::size_t n_parallel = 4,
                               std::size_t beam_width = 4);


/// Format helper: microseconds with 1 decimal.
std::string us(double v);

}  // namespace algas::bench
