// bench_churn — the streaming-mutability recall gate.
//
// Exercises the full MutableIndex lifecycle the way a serving system would:
// start from the first 70% of the bench dataset, then run four churn waves
// that each tombstone a slice of the original rows, stage a slice of the
// held-out rows, and serve live queries between a batch's phase-1 prepare
// and its phase-2 apply (the reader/writer interleaving the epoch protocol
// permits). After ~30% churn the index compacts and the final recall@10 is
// measured against exact ground truth over the surviving rows, side by side
// with a from-scratch rebuild over the identical row set.
//
// scripts/check_recall.py gates the output JSON against the committed
// bench/churn_baseline.json: the rebuild variant must match exactly (it is
// the deterministic offline builder) and the churned variant may trail the
// same-run rebuild recall by at most the pinned epsilon. The JSON also
// carries an FNV-1a checksum of the churned graph bytes so CI can diff the
// files from ALGAS_BUILD_THREADS=1 and =4 runs — churn must be
// byte-identical across thread counts, exactly like the offline build.
//
// Knobs (environment, same semantics as the other benches):
//   ALGAS_SCALE      dataset size multiplier (CI gate uses 0.05)
//   ALGAS_QUERIES    queries served per wave and per final variant (CI: 40)
//   ALGAS_DATASETS   first listed name is the gate dataset (default sift)
//   ALGAS_CHURN_OUT  output JSON path (default "BENCH_churn.json")
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/mutable_index.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/registry.hpp"
#include "graph/builder.hpp"
#include "metrics/recall.hpp"

using namespace algas;

namespace {

/// The recall_gate configuration (Fig 10/11 comparison point, topk 10).
core::AlgasConfig gate_config() {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 128;
  cfg.search.beam_width = 4;
  cfg.search.offset_beam = 24;
  cfg.slots = 16;
  cfg.host_threads = 1;
  cfg.n_parallel = 4;
  cfg.host_sync = core::HostSync::kPollMirrored;
  return cfg;
}

constexpr std::size_t kTopk = 10;
constexpr std::size_t kWaves = 4;

/// FNV-1a 64 over the published graph + tombstones — the byte-identity
/// fingerprint CI compares across ALGAS_BUILD_THREADS values.
std::uint64_t index_checksum(const core::MutableIndex& idx) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  const Graph& g = idx.graph();
  mix(g.num_nodes());
  mix(g.degree());
  mix(static_cast<std::uint64_t>(g.entry_point()));
  for (NodeId v = 0; static_cast<std::size_t>(v) < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) mix(static_cast<std::uint64_t>(u));
  }
  const auto dead = idx.tombstones().ids();
  mix(dead.size());
  for (NodeId v : dead) mix(static_cast<std::uint64_t>(v));
  return h;
}

/// Exact top-k over the published, non-tombstoned rows — the moving target
/// the per-wave live recall is graded against (the cached bench ground
/// truth covers the original row set, not the churned one).
std::vector<NodeId> live_topk(const core::MutableIndex& idx,
                              std::span<const float> query) {
  const Dataset& ds = idx.dataset();
  std::vector<std::pair<float, NodeId>> scored;
  scored.reserve(idx.live());
  for (NodeId v = 0; static_cast<std::size_t>(v) < idx.published(); ++v) {
    if (idx.tombstones().contains(v)) continue;
    scored.emplace_back(ds.score(query, v), v);
  }
  const std::size_t k = std::min(kTopk, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
  std::vector<NodeId> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = scored[i].second;
  return out;
}

double live_recall(const core::MutableIndex& idx,
                   const core::EngineReport& rep) {
  if (rep.collector.records().empty()) return 0.0;
  double sum = 0.0;
  for (const auto& rec : rep.collector.records()) {
    const auto truth =
        live_topk(idx, idx.dataset().query(rec.query_index));
    if (truth.empty()) continue;
    std::unordered_set<NodeId> truth_set(truth.begin(), truth.end());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < rec.results.size() && i < kTopk; ++i) {
      if (truth_set.count(rec.results[i].id())) ++hits;
    }
    sum += static_cast<double>(hits) / static_cast<double>(truth.size());
  }
  return sum / static_cast<double>(rep.collector.records().size());
}

struct WaveStat {
  std::size_t removed = 0;
  std::size_t inserted = 0;
  std::size_t live = 0;
  double recall = 0.0;
  double mean_latency_us = 0.0;
};

}  // namespace

int main() {
  const RuntimeOptions opts = RuntimeOptions::from_env();
  std::string raw = opts.datasets;
  if (raw.empty()) raw = "sift";
  const std::string ds_name = raw.substr(0, raw.find(','));

  BuildConfig build_cfg;  // bench_build_config() values: shared identity
  build_cfg.degree = 32;
  build_cfg.ef_construction = 64;

  const Dataset full = load_bench_dataset(ds_name);
  const std::size_t n = full.num_base();
  const std::size_t dim = full.dim();
  const std::size_t n_churn = n * 3 / 10;  // held-out rows to stream in
  const std::size_t n_keep = n - n_churn;  // initial serving set
  if (n_churn == 0 || n_keep == 0) {
    throw std::runtime_error("bench_churn: dataset too small to churn");
  }
  const std::size_t nq =
      std::min(opts.queries == 0 ? full.num_queries() : opts.queries,
               full.num_queries());

  // Start the index from the first 70% of the rows, streamed in through the
  // same batch path churn uses (an index streamed from empty in one insert
  // call is byte-identical to build_nsw over the same rows).
  Dataset serving(full.name() + "-churn", dim, full.metric());
  serving.mutable_queries() = full.queries();
  core::MutableIndex idx(std::move(serving), build_cfg);
  idx.insert({full.base().data(), n_keep * dim});

  // Deletion schedule: n_churn distinct original ids, Fisher-Yates order
  // from the deterministic RNG (part of the bench's identity — CI compares
  // runs, so the schedule must not depend on anything ambient).
  std::vector<NodeId> victims(n_keep);
  for (std::size_t i = 0; i < n_keep; ++i) victims[i] = static_cast<NodeId>(i);
  Rng rng(splitmix64(build_cfg.seed ^ 0xc0ffee));
  for (std::size_t i = n_keep - 1; i > 0; --i) {
    std::swap(victims[i], victims[rng.next_below(i + 1)]);
  }
  victims.resize(n_churn);

  std::printf("%s: n=%zu keep=%zu churn=%zu queries=%zu\n", ds_name.c_str(),
              n, n_keep, n_churn, nq);

  // Four churn waves: tombstone a slice, stage a slice, serve live queries
  // between a batch's prepare (phase 1) and apply (phase 2), then drain.
  std::vector<WaveStat> waves;
  std::size_t del_done = 0, ins_done = 0;
  for (std::size_t w = 0; w < kWaves; ++w) {
    const std::size_t del_end =
        (w + 1 == kWaves) ? n_churn : n_churn * (w + 1) / kWaves;
    const std::size_t ins_end = del_end;  // symmetric schedule

    WaveStat stat;
    for (; del_done < del_end; ++del_done) {
      if (idx.remove(victims[del_done])) ++stat.removed;
    }
    const std::size_t row0 = (n_keep + ins_done) * dim;
    const std::size_t rows = (ins_end - ins_done) * dim;
    idx.stage({full.base().data() + row0, rows});
    ins_done = ins_end;

    bool served = false;
    while (idx.pending() > 0) {
      core::StagedBatch batch = idx.prepare_next();
      if (!served) {
        // Live queries against the frozen prefix while the batch sits
        // between its two phases — the serving window churn never closes.
        const auto rep = idx.serve(gate_config(), nq);
        stat.recall = live_recall(idx, rep);
        stat.mean_latency_us = rep.summary.mean_service_us;
        served = true;
      }
      stat.inserted += idx.apply(batch).inserted;
    }
    stat.live = idx.live();
    waves.push_back(stat);
    std::printf("wave %zu: removed %zu inserted %zu live %zu | live "
                "recall@10 %.6f | latency mean %.1fus\n",
                w, stat.removed, stat.inserted, stat.live, stat.recall,
                stat.mean_latency_us);
  }

  const auto creport = idx.compact();
  const std::uint64_t checksum = index_checksum(idx);
  std::printf("compact: dropped %zu survivors %zu patched %zu | checksum "
              "%016llx\n",
              creport.dropped, creport.survivors, creport.patched,
              static_cast<unsigned long long>(checksum));

  // Grade the compacted index and a from-scratch rebuild over the identical
  // surviving rows against exact ground truth. The index's own dataset
  // carries no ground truth (appends dropped it), so recall is computed
  // externally against a gt-attached copy of the same rows.
  Dataset final_ds = idx.dataset();
  compute_ground_truth(final_ds, kTopk);

  const auto churn_rep = idx.serve(gate_config(), nq);
  double churn_recall = 0.0;
  for (const auto& rec : churn_rep.collector.records()) {
    churn_recall += metrics::recall_at_k(final_ds, rec.query_index,
                                         rec.results, kTopk);
  }
  churn_recall /= static_cast<double>(churn_rep.collector.records().size());

  const Graph rebuilt =
      build_graph(GraphKind::kNsw, final_ds, build_cfg).graph;
  core::AlgasEngine rebuild_engine(final_ds, rebuilt, gate_config());
  const auto rebuild_rep = rebuild_engine.run_closed_loop(nq);

  std::printf("churned: recall@10 %.6f | rebuild: recall@10 %.6f\n",
              churn_recall, rebuild_rep.recall);

  const std::string out_path = opts.churn_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(checksum));
  out << "{\n"
      << "  \"bench\": \"bench_churn\",\n"
      << "  \"dataset\": \"" << ds_name << "\",\n"
      << "  \"n_base\": " << final_ds.num_base() << ",\n"
      << "  \"dim\": " << dim << ",\n"
      << "  \"queries\": " << nq << ",\n"
      << "  \"topk\": " << kTopk << ",\n"
      << "  \"candidate_len\": 128,\n"
      << "  \"inserted\": " << n_churn << ",\n"
      << "  \"removed\": " << n_churn << ",\n"
      << "  \"compact_patched\": " << creport.patched << ",\n"
      << "  \"graph_checksum\": \"" << hex << "\",\n"
      << "  \"waves\": [\n";
  out.precision(10);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    out << "    {\"removed\": " << waves[w].removed
        << ", \"inserted\": " << waves[w].inserted
        << ", \"live\": " << waves[w].live
        << ", \"recall_at_10\": " << waves[w].recall << "}"
        << (w + 1 < waves.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"variants\": {\n"
      << "    \"rebuild\": {\n"
      << "      \"recall_at_10\": " << rebuild_rep.recall << ",\n"
      << "      \"mean_latency_us\": " << rebuild_rep.summary.mean_service_us
      << "\n    },\n"
      << "    \"churned\": {\n"
      << "      \"recall_at_10\": " << churn_recall << ",\n"
      << "      \"mean_latency_us\": " << churn_rep.summary.mean_service_us
      << "\n    }\n"
      << "  },\n  \"end\": true\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
