#include "bench_common.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/env.hpp"
#include "dataset/registry.hpp"
#include "simgpu/trace.hpp"

namespace algas::bench {

BuildConfig bench_build_config() {
  BuildConfig cfg;
  cfg.degree = 32;
  cfg.ef_construction = 64;
  return cfg;
}

std::vector<std::string> selected_datasets() {
  const std::string raw = RuntimeOptions::from_env().datasets;
  std::vector<std::string> names;
  std::stringstream ss(raw);
  std::string item;
  const auto known = bench_dataset_names();
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    if (std::find(known.begin(), known.end(), item) == known.end()) {
      throw std::invalid_argument("unknown dataset in ALGAS_DATASETS: " +
                                  item);
    }
    names.push_back(item);
  }
  if (names.empty()) names = known;
  return names;
}

StorageCodec storage_codec() {
  return parse_storage_codec(RuntimeOptions::from_env().storage);
}

const Dataset& dataset(const std::string& name) {
  static std::map<std::string, Dataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    std::cerr << "[bench] loading dataset " << name << "...\n";
    it = cache.emplace(name, load_bench_dataset(name)).first;
    // Quantize after load/ground-truth so recall measures the codec's
    // loss against f32-exact neighbors.
    it->second.set_storage(storage_codec());
    std::cerr << "[bench] " << it->second.describe() << "\n";
  }
  return it->second;
}

const Graph& graph(const std::string& name, GraphKind kind) {
  static std::map<std::string, Graph> cache;
  const std::string key = name + "/" + graph_kind_name(kind);
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::cerr << "[bench] building/loading graph " << key << "...\n";
    it = cache
             .emplace(key, load_or_build_graph(kind, dataset(name),
                                               bench_build_config())
                               .graph)
             .first;
  }
  return it->second;
}

std::size_t query_budget(const Dataset& ds, std::size_t fallback) {
  const std::size_t configured = RuntimeOptions::from_env().queries;
  const std::size_t want = configured == 0 ? fallback : configured;
  return std::min(want, ds.num_queries());
}

std::vector<core::PendingQuery> closed_loop(std::size_t n) {
  std::vector<core::PendingQuery> arrivals;
  arrivals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) arrivals.push_back({i, 0.0});
  return arrivals;
}

void print_header(const std::string& bench, const std::string& what) {
  metrics::print_meta(std::cout, "bench", bench);
  metrics::print_meta(std::cout, "reproduces", what);
  metrics::print_meta(std::cout, "scale",
                      std::to_string(dataset_scale()));
  // Emitted only for quantized runs: the default f32 TSV must stay
  // byte-identical to the pre-codec output.
  if (storage_codec() != StorageCodec::kF32) {
    metrics::print_meta(std::cout, "storage",
                        storage_codec_name(storage_codec()));
  }
  metrics::print_meta(std::cout, "note",
                      "latency/throughput are virtual-time (simulated GPU); "
                      "recall is a real measurement");
  // Announce on stderr, never stdout: the TSV must stay byte-identical
  // whether or not ALGAS_TRACE is set (tracing is a pure observer).
  if (!sim::trace_default_path().empty()) {
    std::cerr << "[bench] SimTrace enabled, writing "
              << sim::trace_default_path() << "\n";
  }
}

core::AlgasConfig algas_config(std::size_t batch, std::size_t candidate_len,
                               std::size_t topk, std::size_t n_parallel,
                               std::size_t beam_width) {
  core::AlgasConfig cfg;
  cfg.search.topk = topk;
  cfg.search.candidate_len = candidate_len;
  cfg.search.beam_width = beam_width;
  cfg.search.offset_beam = 24;
  cfg.slots = batch;
  cfg.host_threads = batch >= 32 ? 2 : 1;
  cfg.n_parallel = n_parallel;
  cfg.host_sync = core::HostSync::kPollMirrored;
  return cfg;
}

std::string us(double v) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << v;
  return out.str();
}

}  // namespace algas::bench
